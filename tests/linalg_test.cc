#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/pinv.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "tensor/random.h"

namespace diffode::linalg {
namespace {

Tensor RandomSpd(Index n, Rng& rng) {
  Tensor a = rng.NormalTensor(Shape{n, n});
  Tensor spd = a.MatMul(a.Transposed());
  for (Index i = 0; i < n; ++i) spd.at(i, i) += static_cast<Scalar>(n);
  return spd;
}

TEST(CholeskyTest, ReconstructsMatrix) {
  Rng rng(1);
  Tensor a = RandomSpd(5, rng);
  Tensor l = Cholesky(a);
  EXPECT_LT((l.MatMul(l.Transposed()) - a).MaxAbs(), 1e-10);
}

TEST(CholeskyTest, SolveSpdResidual) {
  Rng rng(2);
  Tensor a = RandomSpd(6, rng);
  Tensor b = rng.NormalTensor(Shape{6, 2});
  Tensor x = SolveSpd(a, b);
  EXPECT_LT((a.MatMul(x) - b).MaxAbs(), 1e-9);
}

TEST(LuTest, SolveResidualAndMultiRhs) {
  Rng rng(3);
  Tensor a = rng.NormalTensor(Shape{7, 7});
  for (Index i = 0; i < 7; ++i) a.at(i, i) += 3.0;
  Tensor b = rng.NormalTensor(Shape{7, 3});
  Tensor x = Solve(a, b);
  EXPECT_LT((a.MatMul(x) - b).MaxAbs(), 1e-9);
}

TEST(LuTest, SolveNeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Tensor a = Tensor::FromRows(2, 2, {0, 1, 1, 0});
  Tensor b = Tensor::FromRows(2, 1, {2, 3});
  Tensor x = Solve(a, b);
  EXPECT_NEAR(x.at(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(x.at(1, 0), 2.0, 1e-12);
}

TEST(LuTest, InverseIdentity) {
  Rng rng(4);
  Tensor a = rng.NormalTensor(Shape{5, 5});
  for (Index i = 0; i < 5; ++i) a.at(i, i) += 4.0;
  Tensor inv = Inverse(a);
  EXPECT_LT((a.MatMul(inv) - Tensor::Eye(5)).MaxAbs(), 1e-9);
  EXPECT_LT((inv.MatMul(a) - Tensor::Eye(5)).MaxAbs(), 1e-9);
}

TEST(QrTest, OrthonormalColumnsAndReconstruction) {
  Rng rng(5);
  Tensor a = rng.NormalTensor(Shape{8, 4});
  QrResult qr = Qr(a);
  Tensor qtq = qr.q.Transposed().MatMul(qr.q);
  EXPECT_LT((qtq - Tensor::Eye(4)).MaxAbs(), 1e-10);
  EXPECT_LT((qr.q.MatMul(qr.r) - a).MaxAbs(), 1e-10);
  // R upper triangular.
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < i; ++j) EXPECT_EQ(qr.r.at(i, j), 0.0);
}

TEST(QrTest, LeastSquaresMatchesNormalEquations) {
  Rng rng(6);
  Tensor a = rng.NormalTensor(Shape{10, 3});
  Tensor b = rng.NormalTensor(Shape{10, 1});
  Tensor x = LeastSquares(a, b);
  // Normal equations residual: Aᵀ(Ax - b) = 0.
  Tensor residual = a.Transposed().MatMul(a.MatMul(x) - b);
  EXPECT_LT(residual.MaxAbs(), 1e-9);
}

TEST(SvdTest, ReconstructionAndOrthogonality) {
  Rng rng(7);
  Tensor a = rng.NormalTensor(Shape{6, 4});
  SvdResult svd = Svd(a);
  // Reconstruct U diag(sigma) Vᵀ.
  Tensor us = svd.u;
  for (Index j = 0; j < 4; ++j)
    for (Index i = 0; i < 6; ++i) us.at(i, j) *= svd.sigma[j];
  EXPECT_LT((us.MatMul(svd.v.Transposed()) - a).MaxAbs(), 1e-9);
  EXPECT_LT((svd.u.Transposed().MatMul(svd.u) - Tensor::Eye(4)).MaxAbs(),
            1e-9);
  EXPECT_LT((svd.v.Transposed().MatMul(svd.v) - Tensor::Eye(4)).MaxAbs(),
            1e-9);
  // Descending singular values.
  for (Index j = 1; j < 4; ++j) EXPECT_GE(svd.sigma[j - 1], svd.sigma[j]);
}

TEST(SvdTest, KnownSingularValues) {
  // diag(3, 2) embedded in a 3x2 matrix.
  Tensor a = Tensor::FromRows(3, 2, {3, 0, 0, 2, 0, 0});
  SvdResult svd = Svd(a);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-12);
}

TEST(SvdTest, RankDetection) {
  Rng rng(8);
  // Rank-2 matrix: outer product sum.
  Tensor u = rng.NormalTensor(Shape{6, 2});
  Tensor v = rng.NormalTensor(Shape{2, 5});
  Tensor a = u.MatMul(v);
  EXPECT_EQ(Rank(a), 2);
  EXPECT_EQ(Rank(Tensor::Eye(4)), 4);
  EXPECT_EQ(Rank(Tensor::Zeros(Shape{3, 3})), 0);
}

// The four Moore-Penrose conditions from the paper's Definition 1.
void CheckMoorePenrose(const Tensor& a, const Tensor& g, Scalar tol) {
  EXPECT_LT((a.MatMul(g).MatMul(a) - a).MaxAbs(), tol);            // (i)
  EXPECT_LT((g.MatMul(a).MatMul(g) - g).MaxAbs(), tol);            // (ii)
  Tensor ag = a.MatMul(g);
  EXPECT_LT((ag - ag.Transposed()).MaxAbs(), tol);                 // (iii)
  Tensor ga = g.MatMul(a);
  EXPECT_LT((ga - ga.Transposed()).MaxAbs(), tol);                 // (iv)
}

TEST(PinvTest, MoorePenroseConditionsTall) {
  Rng rng(9);
  Tensor a = rng.NormalTensor(Shape{7, 3});
  CheckMoorePenrose(a, PInverse(a), 1e-9);
}

TEST(PinvTest, MoorePenroseConditionsWide) {
  Rng rng(10);
  Tensor a = rng.NormalTensor(Shape{3, 7});
  CheckMoorePenrose(a, PInverse(a), 1e-9);
}

TEST(PinvTest, MoorePenroseConditionsRankDeficient) {
  Rng rng(11);
  Tensor u = rng.NormalTensor(Shape{6, 2});
  Tensor v = rng.NormalTensor(Shape{2, 6});
  Tensor a = u.MatMul(v);  // rank 2, 6x6
  CheckMoorePenrose(a, PInverse(a), 1e-8);
}

TEST(PinvTest, InvertibleMatrixMatchesInverse) {
  Rng rng(12);
  Tensor a = rng.NormalTensor(Shape{4, 4});
  for (Index i = 0; i < 4; ++i) a.at(i, i) += 3.0;
  EXPECT_LT((PInverse(a) - Inverse(a)).MaxAbs(), 1e-8);
}

TEST(PinvTest, FullRowRankFastPathMatchesSvdPath) {
  Rng rng(13);
  Tensor a = rng.NormalTensor(Shape{3, 9});  // wide, full row rank a.s.
  Tensor fast = PInverseFullRowRank(a, 0.0);
  Tensor reference = PInverse(a);
  EXPECT_LT((fast - reference).MaxAbs(), 1e-8);
}

TEST(PinvTest, PaperIdentityForZt) {
  // The paper's claim: for Zᵀ (d x n, full row rank), (Zᵀ)† = Z (ZᵀZ)^{-1}.
  Rng rng(14);
  Tensor z = rng.NormalTensor(Shape{10, 4});  // n x d
  Tensor zt = z.Transposed();
  Tensor gram_inv = Inverse(zt.MatMul(z));
  Tensor closed_form = z.MatMul(gram_inv);
  EXPECT_LT((closed_form - PInverse(zt)).MaxAbs(), 1e-8);
}

}  // namespace
}  // namespace diffode::linalg
