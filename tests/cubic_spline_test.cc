#include "ode/cubic_spline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.h"

namespace diffode::ode {
namespace {

TEST(CubicSplineTest, InterpolatesKnotsExactly) {
  Rng rng(1);
  std::vector<Scalar> times = {0.0, 0.7, 1.1, 2.5, 4.0};
  Tensor values = rng.NormalTensor(Shape{5, 3});
  CubicSpline spline(times, values);
  for (std::size_t i = 0; i < times.size(); ++i) {
    Tensor v = spline.Evaluate(times[i]);
    for (Index j = 0; j < 3; ++j)
      EXPECT_NEAR(v.at(0, j), values.at(static_cast<Index>(i), j), 1e-10);
  }
}

TEST(CubicSplineTest, TwoPointsReducesToLine) {
  std::vector<Scalar> times = {1.0, 3.0};
  Tensor values = Tensor::FromRows(2, 1, {2.0, 6.0});
  CubicSpline spline(times, values);
  EXPECT_NEAR(spline.Evaluate(2.0).item(), 4.0, 1e-12);
  EXPECT_NEAR(spline.Derivative(1.5).item(), 2.0, 1e-12);
}

TEST(CubicSplineTest, ReproducesCubicFreeOfEndEffectsInside) {
  // A natural spline is exact for linear data everywhere.
  std::vector<Scalar> times;
  Tensor values(Shape{8, 1});
  for (Index i = 0; i < 8; ++i) {
    times.push_back(static_cast<Scalar>(i));
    values.at(i, 0) = 3.0 * i - 1.0;
  }
  CubicSpline spline(times, values);
  for (Scalar t = 0.25; t < 7.0; t += 0.5) {
    EXPECT_NEAR(spline.Evaluate(t).item(), 3.0 * t - 1.0, 1e-10);
    EXPECT_NEAR(spline.Derivative(t).item(), 3.0, 1e-10);
  }
}

TEST(CubicSplineTest, ApproximatesSmoothFunction) {
  // Dense knots on sin(t): mid-segment error must be tiny.
  std::vector<Scalar> times;
  const Index n = 40;
  Tensor values(Shape{n, 1});
  for (Index i = 0; i < n; ++i) {
    const Scalar t = 2.0 * 3.14159265358979 * i / (n - 1);
    times.push_back(t);
    values.at(i, 0) = std::sin(t);
  }
  CubicSpline spline(times, values);
  for (Scalar t = 0.4; t < 5.8; t += 0.37) {
    EXPECT_NEAR(spline.Evaluate(t).item(), std::sin(t), 1e-4);
    EXPECT_NEAR(spline.Derivative(t).item(), std::cos(t), 1e-2);
  }
}

TEST(CubicSplineTest, DerivativeIsConsistentWithValue) {
  Rng rng(2);
  std::vector<Scalar> times = {0.0, 0.5, 1.3, 2.0, 3.1};
  Tensor values = rng.NormalTensor(Shape{5, 2});
  CubicSpline spline(times, values);
  const Scalar eps = 1e-6;
  for (Scalar t : {0.2, 0.9, 1.7, 2.6}) {
    Tensor fd = (spline.Evaluate(t + eps) - spline.Evaluate(t - eps)) *
                (1.0 / (2.0 * eps));
    EXPECT_LT((spline.Derivative(t) - fd).MaxAbs(), 1e-6) << t;
  }
}

TEST(CubicSplineTest, ContinuityAcrossSegments) {
  Rng rng(3);
  std::vector<Scalar> times = {0.0, 1.0, 2.0, 3.0};
  Tensor values = rng.NormalTensor(Shape{4, 1});
  CubicSpline spline(times, values);
  const Scalar eps = 1e-9;
  for (Scalar knot : {1.0, 2.0}) {
    EXPECT_NEAR(spline.Evaluate(knot - eps).item(),
                spline.Evaluate(knot + eps).item(), 1e-6);
    EXPECT_NEAR(spline.Derivative(knot - eps).item(),
                spline.Derivative(knot + eps).item(), 1e-5);
  }
}

TEST(CubicSplineTest, NaturalBoundarySecondDerivativeZero) {
  // At the ends, the second derivative of a natural spline vanishes:
  // the first derivative is locally linear-free, check via three-point
  // second difference.
  Rng rng(4);
  std::vector<Scalar> times = {0.0, 1.0, 2.0, 3.0, 4.0};
  Tensor values = rng.NormalTensor(Shape{5, 1});
  CubicSpline spline(times, values);
  const Scalar h = 1e-4;
  const Scalar second =
      (spline.Evaluate(0.0).item() - 2.0 * spline.Evaluate(h).item() +
       spline.Evaluate(2 * h).item()) /
      (h * h);
  EXPECT_NEAR(second, 0.0, 1e-2);
}

TEST(CubicSplineTest, ExtrapolationIsFiniteAndContinuous) {
  Rng rng(5);
  std::vector<Scalar> times = {0.0, 1.0, 2.0};
  Tensor values = rng.NormalTensor(Shape{3, 2});
  CubicSpline spline(times, values);
  Tensor inside = spline.Evaluate(2.0);
  Tensor outside = spline.Evaluate(2.0 + 1e-9);
  EXPECT_LT((inside - outside).MaxAbs(), 1e-6);
  EXPECT_TRUE(spline.Evaluate(5.0).AllFinite());
  EXPECT_TRUE(spline.Evaluate(-3.0).AllFinite());
}

}  // namespace
}  // namespace diffode::ode
