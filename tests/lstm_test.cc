#include "nn/lstm.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "gradcheck.h"
#include "nn/optimizer.h"
#include "tensor/random.h"

namespace diffode::nn {
namespace {

TEST(LstmCellTest, ShapesAndBounds) {
  Rng rng(1);
  LstmCell cell(3, 5, rng);
  auto state = cell.InitialState(1);
  ag::Var x = ag::Constant(rng.NormalTensor(Shape{1, 3}, 0.0, 5.0));
  for (int i = 0; i < 30; ++i) state = cell.Forward(x, state);
  EXPECT_EQ(state.h.cols(), 5);
  EXPECT_EQ(state.c.cols(), 5);
  // h = o * tanh(c) is bounded by 1; c may exceed 1 but stays finite.
  EXPECT_LE(state.h.value().MaxAbs(), 1.0 + 1e-12);
  EXPECT_TRUE(state.c.value().AllFinite());
}

TEST(LstmCellTest, MemoryCellAccumulates) {
  // With a strongly positive input gate drive the cell integrates inputs:
  // repeated identical inputs grow |c| beyond 1 (unlike a GRU's h).
  Rng rng(2);
  LstmCell cell(1, 4, rng);
  auto state = cell.InitialState(1);
  ag::Var x = ag::Constant(Tensor::Full(Shape{1, 1}, 3.0));
  Scalar prev_norm = 0.0;
  for (int i = 0; i < 20; ++i) {
    state = cell.Forward(x, state);
    const Scalar norm = state.c.value().Norm();
    EXPECT_GE(norm + 1e-9, prev_norm * 0.5);  // no collapse
    prev_norm = norm;
  }
  EXPECT_GT(prev_norm, 0.0);
}

TEST(LstmCellTest, GradientsFlowThroughTwoSteps) {
  Rng rng(3);
  LstmCell cell(2, 3, rng);
  ag::Var x = ag::Param(rng.NormalTensor(Shape{1, 2}));
  auto fn = [&] {
    auto state = cell.InitialState(1);
    state = cell.Forward(x, state);
    state = cell.Forward(x, state);
    return ag::Mean(ag::Square(state.h));
  };
  EXPECT_LT(testing::MaxGradError(x, fn), 1e-5);
}

TEST(LstmCellTest, ParamsCollected) {
  Rng rng(4);
  LstmCell cell(2, 3, rng);
  // x gates: 2*12 + 12; h gates: 3*12 + 12.
  EXPECT_EQ(cell.NumParams(), 24 + 12 + 36 + 12);
}

TEST(LstmCellTest, TrainableOnToyTask) {
  // Learn to output the sign of the accumulated input sum.
  Rng rng(5);
  LstmCell cell(1, 6, rng);
  Linear head(6, 1, rng);
  std::vector<ag::Var> params = cell.Params();
  head.CollectParams(&params);
  Adam opt(params, 0.05);
  Scalar first = 0.0, last = 0.0;
  for (int step = 0; step < 40; ++step) {
    Scalar loss_value = 0.0;
    for (Scalar sign : {1.0, -1.0}) {
      auto state = cell.InitialState(1);
      for (int k = 0; k < 4; ++k) {
        ag::Var x = ag::Constant(Tensor::Full(Shape{1, 1}, sign * 0.5));
        state = cell.Forward(x, state);
      }
      ag::Var pred = head.Forward(state.h);
      ag::Var loss =
          ag::MseLoss(pred, Tensor::Full(Shape{1, 1}, sign));
      loss_value += loss.value().item();
      loss.Backward();
    }
    if (step == 0) first = loss_value;
    last = loss_value;
    opt.StepAndZero();
  }
  EXPECT_LT(last, first * 0.5);
}

}  // namespace
}  // namespace diffode::nn
