#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/random.h"

namespace diffode {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s{3, 4};
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.dim(0), 3);
  EXPECT_EQ(s.dim(1), 4);
  EXPECT_EQ(s.numel(), 12);
  EXPECT_EQ(s.ToString(), "[3, 4]");
  EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(TensorTest, FactoriesAndAccess) {
  Tensor z = Tensor::Zeros(Shape{2, 2});
  EXPECT_EQ(z.Sum(), 0.0);
  Tensor o = Tensor::Ones(Shape{2, 2});
  EXPECT_EQ(o.Sum(), 4.0);
  Tensor f = Tensor::Full(Shape{3}, 2.5);
  EXPECT_DOUBLE_EQ(f.Mean(), 2.5);
  Tensor eye = Tensor::Eye(3);
  EXPECT_DOUBLE_EQ(eye.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(Tensor::FromScalar(7.0).item(), 7.0);
}

TEST(TensorTest, RowColVectorFactories) {
  Tensor r = Tensor::RowVector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  Tensor c = Tensor::ColVector({1, 2, 3});
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 1);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a = Tensor::FromRows(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromRows(2, 2, {10, 20, 30, 40});
  Tensor sum = a + b;
  EXPECT_DOUBLE_EQ(sum.at(1, 1), 44.0);
  Tensor diff = b - a;
  EXPECT_DOUBLE_EQ(diff.at(0, 0), 9.0);
  Tensor prod = a * b;
  EXPECT_DOUBLE_EQ(prod.at(0, 1), 40.0);
  Tensor scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.at(1, 0), 6.0);
  Tensor quot = b.CwiseQuotient(a);
  EXPECT_DOUBLE_EQ(quot.at(1, 1), 10.0);
  Tensor neg = -a;
  EXPECT_DOUBLE_EQ(neg.at(0, 0), -1.0);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a = Tensor::FromRows(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromRows(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(TensorTest, TransposeRoundTrip) {
  Rng rng(1);
  Tensor a = rng.NormalTensor(Shape{4, 3});
  Tensor round = a.Transposed().Transposed();
  EXPECT_DOUBLE_EQ((round - a).MaxAbs(), 0.0);
}

TEST(TensorTest, Reductions) {
  Tensor a = Tensor::FromRows(2, 3, {1, -2, 3, 4, -5, 6});
  EXPECT_DOUBLE_EQ(a.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 6.0);
  EXPECT_DOUBLE_EQ(a.Max(), 6.0);
  EXPECT_NEAR(a.Norm(), std::sqrt(1 + 4 + 9 + 16 + 25 + 36), 1e-12);
  Tensor rs = a.RowSums();
  EXPECT_DOUBLE_EQ(rs.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(rs.at(1, 0), 5.0);
  Tensor cs = a.ColSums();
  EXPECT_DOUBLE_EQ(cs.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(cs.at(0, 1), -7.0);
}

TEST(TensorTest, DotProduct) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({4, 5, 6});
  EXPECT_DOUBLE_EQ(a.Dot(b), 32.0);
}

TEST(TensorTest, SliceRowsAndCols) {
  Tensor a = Tensor::FromRows(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor r = a.Row(1);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 4.0);
  Tensor rows = a.Rows(1, 2);
  EXPECT_EQ(rows.rows(), 2);
  EXPECT_DOUBLE_EQ(rows.at(1, 1), 6.0);
  Tensor c = a.Col(0);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_DOUBLE_EQ(c.at(2, 0), 5.0);
}

TEST(TensorTest, SetRow) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  a.SetRow(1, Tensor::RowVector({7, 8, 9}));
  EXPECT_DOUBLE_EQ(a.at(1, 2), 9.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(TensorTest, ConcatRowsCols) {
  Tensor a = Tensor::FromRows(1, 2, {1, 2});
  Tensor b = Tensor::FromRows(2, 2, {3, 4, 5, 6});
  Tensor rows = Tensor::ConcatRows({a, b});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_DOUBLE_EQ(rows.at(2, 1), 6.0);
  Tensor c = Tensor::FromRows(2, 1, {9, 10});
  Tensor cols = Tensor::ConcatCols({b, c});
  EXPECT_EQ(cols.cols(), 3);
  EXPECT_DOUBLE_EQ(cols.at(1, 2), 10.0);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor a = Tensor::FromRows(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshaped(Shape{3, 2});
  EXPECT_DOUBLE_EQ(b.at(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 2.0);
}

TEST(TensorTest, MapAppliesFunction) {
  Tensor a = Tensor::FromVector({1, 4, 9});
  Tensor s = a.Map([](Scalar x) { return std::sqrt(x); });
  EXPECT_DOUBLE_EQ(s[2], 3.0);
}

TEST(TensorTest, AllFinite) {
  Tensor a = Tensor::Ones(Shape{2});
  EXPECT_TRUE(a.AllFinite());
  a[0] = std::numeric_limits<Scalar>::quiet_NaN();
  EXPECT_FALSE(a.AllFinite());
  a[0] = std::numeric_limits<Scalar>::infinity();
  EXPECT_FALSE(a.AllFinite());
}

TEST(RngTest, Determinism) {
  Rng a(99), b(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Normal(), b.Normal());
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Scalar u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, NormalTensorMoments) {
  Rng rng(7);
  Tensor t = rng.NormalTensor(Shape{10000}, 1.0, 2.0);
  EXPECT_NEAR(t.Mean(), 1.0, 0.1);
  Scalar var = 0.0;
  for (Index i = 0; i < t.numel(); ++i) {
    const Scalar d = t[i] - t.Mean();
    var += d * d;
  }
  var /= static_cast<Scalar>(t.numel());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

}  // namespace
}  // namespace diffode
