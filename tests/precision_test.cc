// The f32 serving tier (Freeze(Precision::kF32) + diffode_f32.cc) vs the
// f64 engine, across the DIFFODE variant zoo. Both models serve the SAME
// f32-representable checkpoint (Freeze(kF32) rounds the parameters in
// place before the snapshot, and the rounded weights are copied into the
// f64 reference), so every difference below is pure compute precision:
//   - classification logits agree within 1e-4 relative on the typical
//     (median) row, with the conditioning-driven tail explicitly bounded
//     at p90 and hard-max, and the argmax matches on >= 99% of sequences
//     across the zoo;
//   - regression predictions agree under the same tiered contract (median
//     1e-4, p90 1e-3, hard max per readout);
//   - the routing contract: a kF32-frozen model reports serving_precision()
//     == kF32 and its batched forwards return finite f64 tensors of the
//     usual shapes.
//
// The zoo checkpoints are TRAINED (briefly, like serialize_roundtrip_test)
// rather than random inits. That is the population the serving tier exists
// for, and it matters for the bounds: an untrained Xavier-random dynamics
// function can chaotically amplify per-step f32 state rounding by ~1e5x,
// while the consistency-regularized dynamics that training produces keep
// the amplification benign. The bounds above are the serving contract for
// real checkpoints, not for noise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/batched_model.h"
#include "core/diffode_model.h"
#include "data/generators.h"
#include "data/sequence_batch.h"
#include "tensor/random.h"
#include "train/trainer.h"

namespace diffode {
namespace {

core::DiffOdeConfig SmallConfig() {
  core::DiffOdeConfig config;
  config.input_dim = 2;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.num_classes = 3;
  config.step = 0.5;
  return config;
}

// Zoo models train on the shared synthetic-periodic task (1 feature, 2
// classes); everything else matches SmallConfig.
core::DiffOdeConfig TrainableConfig() {
  core::DiffOdeConfig config = SmallConfig();
  config.input_dim = 1;
  config.num_classes = 2;
  return config;
}

// Same random irregular-series recipe as tests/batched_equiv_test.cc; used
// by the routing test, which needs no trained weights.
data::IrregularSeries MakeSeries(std::uint64_t seed, Index features = 2) {
  Rng rng(seed);
  data::IrregularSeries s;
  const Index n = 6 + static_cast<Index>(rng.Uniform(0.0, 6.0));
  s.values = Tensor(Shape{n, features});
  s.mask = Tensor(Shape{n, features});
  Scalar t = rng.Uniform(0.0, 0.3);
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.1, 0.9);
    s.times.push_back(t);
    Index observed = 0;
    for (Index j = 0; j < features; ++j) {
      if (rng.Uniform(0.0, 1.0) < 0.75) {
        s.mask.at(i, j) = 1.0;
        ++observed;
      }
      s.values.at(i, j) =
          std::sin(t + static_cast<Scalar>(j)) + rng.Normal(0.0, 0.1);
    }
    if (observed == 0) s.mask.at(i, i % features) = 1.0;
  }
  s.label = static_cast<Index>(seed % 2);
  return s;
}

std::vector<data::IrregularSeries> MakeBatchSeries(Index b,
                                                   std::uint64_t seed0) {
  std::vector<data::IrregularSeries> out;
  out.reserve(static_cast<std::size_t>(b));
  for (Index r = 0; r < b; ++r)
    out.push_back(MakeSeries(seed0 + static_cast<std::uint64_t>(r)));
  return out;
}

// The DIFFODE variant zoo: strategies, heads, encoders, attention on/off,
// multi-head — every code path of the f32 engine.
std::vector<core::DiffOdeConfig> ZooConfigs() {
  std::vector<core::DiffOdeConfig> configs;
  configs.push_back(TrainableConfig());
  {
    core::DiffOdeConfig c = TrainableConfig();
    c.pt_strategy = sparsity::PtStrategy::kMinNorm;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = TrainableConfig();
    c.pt_strategy = sparsity::PtStrategy::kAdaH;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = TrainableConfig();
    c.head = core::OutputHead::kDirect;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = TrainableConfig();
    c.use_attention = false;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = TrainableConfig();
    c.encoder = core::EncoderType::kMlp;
    configs.push_back(c);
  }
  {
    core::DiffOdeConfig c = TrainableConfig();
    c.num_heads = 2;
    configs.push_back(c);
  }
  return configs;
}

// Shared training task for the whole zoo (built once; training below is the
// slow part, not generation).
const data::Dataset& ZooDataset() {
  static const data::Dataset* ds = [] {
    data::SyntheticPeriodicConfig config;
    config.num_series = 40;
    config.grid_points = 10;
    config.noise_std = 0.05;
    auto* out = new data::Dataset(data::MakeSyntheticPeriodic(config));
    return out;
  }();
  return *ds;
}

// Serving inputs for the comparisons: the dataset's own sequences (test
// split first, then train) — the distribution the checkpoint was trained
// on, i.e. what serving actually sees.
std::vector<const data::IrregularSeries*> ZooBatchPtrs(Index b) {
  const data::Dataset& ds = ZooDataset();
  std::vector<const data::IrregularSeries*> ptrs;
  ptrs.reserve(static_cast<std::size_t>(b));
  for (const auto& s : ds.test)
    if (static_cast<Index>(ptrs.size()) < b) ptrs.push_back(&s);
  for (const auto& s : ds.train)
    if (static_cast<Index>(ptrs.size()) < b) ptrs.push_back(&s);
  return ptrs;
}

// Builds an (f64-serving, f32-serving) model pair over the SAME trained,
// f32-representable checkpoint: train a model for this config, copy its
// weights into the f32 model and freeze that at kF32 (rounding the
// parameters through float in place), then copy the ROUNDED weights into
// the f64 model and freeze that at the default precision.
void MakeTrainedServingPair(const core::DiffOdeConfig& config,
                            std::unique_ptr<core::DiffOde>* f64_model,
                            std::unique_ptr<core::DiffOde>* f32_model) {
  core::DiffOde trained(config);
  train::TrainOptions options;
  options.epochs = 40;
  options.batch_size = 16;
  options.lr = 3e-3;
  options.patience = 100;
  (void)train::TrainClassifier(&trained, ZooDataset(), options);

  *f32_model = std::make_unique<core::DiffOde>(config);
  const std::vector<ag::Var> src = trained.Params();
  {
    std::vector<ag::Var> dst = (*f32_model)->Params();
    ASSERT_EQ(src.size(), dst.size());
    for (std::size_t i = 0; i < src.size(); ++i)
      dst[i].node()->value = src[i].value();
  }
  (*f32_model)->Freeze(Precision::kF32);

  core::DiffOdeConfig other = config;
  other.seed = config.seed + 777;  // every weight must come from the copy
  *f64_model = std::make_unique<core::DiffOde>(other);
  const std::vector<ag::Var> rounded = (*f32_model)->Params();
  std::vector<ag::Var> dst = (*f64_model)->Params();
  ASSERT_EQ(rounded.size(), dst.size());
  for (std::size_t i = 0; i < rounded.size(); ++i) {
    ASSERT_TRUE(rounded[i].value().shape() == dst[i].value().shape());
    dst[i].node()->value = rounded[i].value();
  }
  (*f64_model)->Freeze();
}

TEST(PrecisionTest, ServingPrecisionIsReportedAndRouted) {
  core::DiffOde model(SmallConfig());
  EXPECT_EQ(model.serving_precision(), Precision::kF64);
  model.Freeze(Precision::kF32);
  EXPECT_EQ(model.serving_precision(), Precision::kF32);
  EXPECT_STREQ(PrecisionName(model.serving_precision()), "f32");

  const std::vector<data::IrregularSeries> series = MakeBatchSeries(4, 50);
  std::vector<const data::IrregularSeries*> ptrs;
  for (const auto& s : series) ptrs.push_back(&s);
  const data::SequenceBatch batch = data::MakeSequenceBatch(ptrs);
  const Tensor logits = model.ClassifyLogitsBatched(batch);
  ASSERT_EQ(logits.rows(), 4);
  ASSERT_EQ(logits.cols(), 3);
  EXPECT_TRUE(logits.AllFinite());
  const std::vector<std::vector<Scalar>> times(
      4, std::vector<Scalar>{series[0].times.front(), 2.0});
  const auto preds = model.PredictAtBatched(batch, times);
  ASSERT_EQ(preds.size(), 4u);
  for (const auto& row : preds)
    for (const Tensor& p : row) {
      ASSERT_EQ(p.cols(), 2);
      EXPECT_TRUE(p.AllFinite());
    }
}

// Logit agreement across the zoo. The contract has three tiers, matching
// what a mixed-precision ODE can actually promise (docs/performance.md
// "Serving precision" derives the numbers):
//   - the TYPICAL row agrees within 1e-4 relative (median bound);
//   - a small conditioning-driven tail exists — rows whose DHS context has
//     a near-singular Gram matrix amplify the one-time f32 rounding of
//     (Zᵀ)† through the integration horizon — bounded at p90 and hard-max;
//   - the decision-level contract: argmax matches on >= 99% of sequences.
TEST(PrecisionTest, ZooLogitsAgreeWithF64AndArgmaxMatches) {
  const Index b = 16;
  Index total = 0;
  Index argmax_match = 0;
  std::vector<Scalar> rel_errs;
  for (const core::DiffOdeConfig& config : ZooConfigs()) {
    std::unique_ptr<core::DiffOde> m64, m32;
    MakeTrainedServingPair(config, &m64, &m32);
    const std::vector<const data::IrregularSeries*> ptrs = ZooBatchPtrs(b);
    const data::SequenceBatch batch = data::MakeSequenceBatch(ptrs);
    const Tensor ref = m64->ClassifyLogitsBatched(batch);
    const Tensor got = m32->ClassifyLogitsBatched(batch);
    ASSERT_TRUE(ref.shape() == got.shape());
    for (Index r = 0; r < ref.rows(); ++r) {
      Scalar num = 0.0, den = 1.0;
      Index ref_arg = 0, got_arg = 0;
      for (Index j = 0; j < ref.cols(); ++j) {
        num = std::max(num, std::fabs(got.at(r, j) - ref.at(r, j)));
        den = std::max(den, std::fabs(ref.at(r, j)));
        if (ref.at(r, j) > ref.at(r, ref_arg)) ref_arg = j;
        if (got.at(r, j) > got.at(r, got_arg)) got_arg = j;
      }
      rel_errs.push_back(num / den);
      ++total;
      if (ref_arg == got_arg) ++argmax_match;
    }
  }
  std::sort(rel_errs.begin(), rel_errs.end());
  const auto quantile = [&](double q) {
    return rel_errs[static_cast<std::size_t>(
        q * static_cast<double>(rel_errs.size() - 1))];
  };
  EXPECT_LE(quantile(0.5), 1e-4) << "median per-row relative deviation";
  EXPECT_LE(quantile(0.9), 5e-3) << "p90 per-row relative deviation";
  // The hard max is a catastrophe backstop, not a precision promise: the
  // single worst conditioning-tail row depends on the trained checkpoint,
  // which depends on build codegen as well as kernel ISA (sanitizer builds
  // change FMA contraction in the scalar paths, shifting training
  // arithmetic). Measured worst rows sit near 5e-2 on release builds and
  // ~1e-1 under ASan; order-unity divergence would mean a real bug.
  EXPECT_LE(rel_errs.back(), 1.5e-1) << "worst per-row relative deviation";
  // >= 99% argmax agreement across the zoo — the decision-level contract
  // the serving tier actually promises.
  EXPECT_GE(static_cast<double>(argmax_match),
            0.99 * static_cast<double>(total));
}

// Regression/interpolation agreement across the zoo, under the same tiered
// contract as the logits: the trained checkpoint (and therefore its DHS
// conditioning) depends on the dispatched kernel ISA, so a fixed
// per-element bound is ISA-fragile — a scalar-kernel training run can place
// one row in the conditioning tail that the AVX2 run doesn't.
TEST(PrecisionTest, ZooPredictionsAgreeWithF64) {
  std::vector<Scalar> rel_errs;
  for (const core::DiffOdeConfig& config : ZooConfigs()) {
    std::unique_ptr<core::DiffOde> m64, m32;
    MakeTrainedServingPair(config, &m64, &m32);
    const std::vector<const data::IrregularSeries*> ptrs = ZooBatchPtrs(6);
    const data::SequenceBatch batch = data::MakeSequenceBatch(ptrs);
    std::vector<std::vector<Scalar>> times;
    times.reserve(ptrs.size());
    for (const data::IrregularSeries* s : ptrs) {
      const Scalar lo = s->times.front(), hi = s->times.back();
      times.push_back({lo - 0.4, 0.5 * (lo + hi), hi + 0.7});
    }
    const auto ref = m64->PredictAtBatched(batch, times);
    const auto got = m32->PredictAtBatched(batch, times);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t r = 0; r < ref.size(); ++r) {
      ASSERT_EQ(ref[r].size(), got[r].size());
      for (std::size_t k = 0; k < ref[r].size(); ++k) {
        const Tensor& a = got[r][k];
        const Tensor& e = ref[r][k];
        ASSERT_TRUE(a.shape() == e.shape());
        EXPECT_TRUE(a.AllFinite());
        Scalar num = 0.0, den = 1.0;
        for (Index j = 0; j < e.numel(); ++j) {
          num = std::max(num, std::fabs(a[j] - e[j]));
          den = std::max(den, std::fabs(e[j]));
        }
        rel_errs.push_back(num / den);
      }
    }
  }
  std::sort(rel_errs.begin(), rel_errs.end());
  const auto quantile = [&](double q) {
    return rel_errs[static_cast<std::size_t>(
        q * static_cast<double>(rel_errs.size() - 1))];
  };
  EXPECT_LE(quantile(0.5), 1e-4) << "median per-readout relative deviation";
  EXPECT_LE(quantile(0.9), 1e-3) << "p90 per-readout relative deviation";
  EXPECT_LE(rel_errs.back(), 5e-2) << "worst per-readout relative deviation";
}

}  // namespace
}  // namespace diffode
