#include "hippo/hippo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/svd.h"
#include "ode/solver.h"

namespace diffode::hippo {
namespace {

TEST(HippoTest, LegsMatrixStructure) {
  Tensor a = MakeLegsA(5);
  // Diagonal -(i+1), strictly-upper zero, lower -sqrt(2i+1)sqrt(2k+1).
  for (Index i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.at(i, i), -static_cast<Scalar>(i + 1));
    for (Index k = i + 1; k < 5; ++k) EXPECT_DOUBLE_EQ(a.at(i, k), 0.0);
    for (Index k = 0; k < i; ++k)
      EXPECT_NEAR(a.at(i, k),
                  -std::sqrt(Scalar(2 * i + 1)) * std::sqrt(Scalar(2 * k + 1)),
                  1e-12);
  }
  Tensor b = MakeLegsB(4);
  for (Index i = 0; i < 4; ++i)
    EXPECT_NEAR(b.at(i, 0), std::sqrt(Scalar(2 * i + 1)), 1e-12);
}

TEST(HippoTest, LegsIsStable) {
  // All eigenvalues of the LegS A have negative real part; the diagonal of a
  // triangular-structure similarity gives them directly for this form.
  // Empirically: integrating dc/dt = A c decays.
  Tensor a = MakeLegsA(8);
  ode::SolveOptions options;
  options.method = ode::Method::kRk4;
  options.step = 0.01;
  Tensor c0 = Tensor::Ones(Shape{8, 1});
  ode::OdeFunc f = [&a](Scalar, const Tensor& c) { return a.MatMul(c); };
  Tensor c1 = ode::Integrate(f, c0, 0.0, 5.0, options);
  EXPECT_LT(c1.Norm(), c0.Norm() * 0.1);
}

TEST(HippoTest, BilinearMatchesExponentialForSmallStep) {
  Tensor a = MakeLegsA(4);
  Tensor b = MakeLegsB(4);
  const Scalar dt = 1e-3;
  Discretized d = Bilinear(a, b, dt);
  // a_bar ~ I + dt A for small dt.
  Tensor approx = Tensor::Eye(4) + a * dt;
  EXPECT_LT((d.a_bar - approx).MaxAbs(), 1e-4);
  EXPECT_LT((d.b_bar - b * dt).MaxAbs(), 1e-4);
}

TEST(HippoTest, BilinearStableForLargeStep) {
  // Bilinear discretization of a stable system keeps the spectral radius
  // below 1 even for large steps (unlike Euler).
  Tensor a = MakeLegsA(6);
  Tensor b = MakeLegsB(6);
  Discretized d = Bilinear(a, b, 1.0);
  // Power iteration estimate of the spectral radius.
  Tensor v = Tensor::Ones(Shape{6, 1});
  Scalar prev = v.Norm();
  for (int i = 0; i < 50; ++i) {
    v = d.a_bar.MatMul(v);
    const Scalar cur = v.Norm();
    if (i > 30) {
      EXPECT_LT(cur / prev, 1.0 + 1e-9);
    }
    prev = cur;
  }
}

TEST(HippoTest, EulerDiscretization) {
  Tensor a = MakeLegsA(3);
  Tensor b = MakeLegsB(3);
  Discretized d = Euler(a, b, 0.1);
  EXPECT_LT((d.a_bar - (Tensor::Eye(3) + a * 0.1)).MaxAbs(), 1e-15);
  EXPECT_LT((d.b_bar - b * 0.1).MaxAbs(), 1e-15);
}

TEST(HippoTest, ProjectorReconstructsConstantSignal) {
  // LegS of a constant stream: coefficient 0 carries the running average
  // (~u), higher Legendre coefficients stay near zero.
  LegsProjector projector(6);
  for (int k = 0; k < 400; ++k) projector.Update(1.0);
  const Tensor& c = projector.coeffs();
  EXPECT_NEAR(c.at(0, 0), 1.0, 0.05);
  for (Index i = 1; i < 6; ++i) EXPECT_LT(std::fabs(c.at(i, 0)), 0.1);
}

TEST(HippoTest, ProjectorTracksRamp) {
  // For u(t) = t/T the Legendre-coefficient memory should weight the first
  // two coefficients: mean 0.5 and positive slope coefficient.
  LegsProjector projector(6);
  const int kSteps = 500;
  for (int k = 1; k <= kSteps; ++k)
    projector.Update(static_cast<Scalar>(k) / kSteps);
  const Tensor& c = projector.coeffs();
  EXPECT_NEAR(c.at(0, 0), 0.5, 0.1);
  EXPECT_GT(c.at(1, 0), 0.05);
}

TEST(HippoTest, ProjectorResetClearsState) {
  LegsProjector projector(4);
  projector.Update(3.0);
  projector.Reset();
  EXPECT_EQ(projector.coeffs().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace diffode::hippo
