#include "data/csv_loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/generators.h"

namespace diffode::data {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(CsvLoaderTest, ParsesSeriesWithHeaderMissingCellsAndLabels) {
  const std::string path = WriteTemp("basic.csv",
                                     "series_id,time,ch0,ch1,label\n"
                                     "a,0.5,1.0,,1\n"
                                     "a,1.5,2.0,3.0,1\n"
                                     "b,0.0,,4.0,0\n"
                                     "b,2.0,5.0,6.0,0\n");
  std::string error;
  auto series = LoadCsv(path, 2, /*has_label=*/true, &error);
  ASSERT_EQ(series.size(), 2u) << error;
  EXPECT_EQ(series[0].length(), 2);
  EXPECT_EQ(series[0].label, 1);
  EXPECT_DOUBLE_EQ(series[0].times[0], 0.5);
  EXPECT_DOUBLE_EQ(series[0].values.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(series[0].mask.at(0, 1), 0.0);  // missing cell
  EXPECT_DOUBLE_EQ(series[0].mask.at(1, 1), 1.0);
  EXPECT_EQ(series[1].label, 0);
  EXPECT_DOUBLE_EQ(series[1].mask.at(0, 0), 0.0);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, NoLabelColumn) {
  const std::string path = WriteTemp("nolabel.csv",
                                     "s,0.0,1.0\n"
                                     "s,1.0,2.0\n");
  std::string error;
  auto series = LoadCsv(path, 1, /*has_label=*/false, &error);
  ASSERT_EQ(series.size(), 1u) << error;
  EXPECT_EQ(series[0].label, -1);
}

TEST(CsvLoaderTest, RejectsWrongCellCount) {
  const std::string path = WriteTemp("badcells.csv", "s,0.0,1.0,2.0\n");
  std::string error;
  auto series = LoadCsv(path, 1, false, &error);
  EXPECT_TRUE(series.empty());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, RejectsBackwardsTime) {
  const std::string path = WriteTemp("backwards.csv",
                                     "s,1.0,1.0\n"
                                     "s,0.5,2.0\n");
  std::string error;
  auto series = LoadCsv(path, 1, false, &error);
  EXPECT_TRUE(series.empty());
  EXPECT_NE(error.find("backwards"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, RejectsGarbageValue) {
  const std::string path = WriteTemp("garbage.csv", "s,0.0,abc\n");
  std::string error;
  auto series = LoadCsv(path, 1, false, &error);
  EXPECT_TRUE(series.empty());
  EXPECT_NE(error.find("bad value"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, MissingFileReportsError) {
  std::string error;
  auto series = LoadCsv("/nonexistent/nowhere.csv", 1, false, &error);
  EXPECT_TRUE(series.empty());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(CsvLoaderTest, RoundTripThroughSaveAndLoad) {
  // Generate a real dataset, save, reload, compare.
  UshcnLikeConfig config;
  config.num_stations = 6;
  config.num_days = 30;
  Dataset ds = MakeUshcnLike(config);
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(SaveCsv(ds.train, path));
  std::string error;
  auto loaded = LoadCsv(path, 5, /*has_label=*/false, &error);
  ASSERT_EQ(loaded.size(), ds.train.size()) << error;
  for (std::size_t k = 0; k < loaded.size(); ++k) {
    ASSERT_EQ(loaded[k].length(), ds.train[k].length());
    for (Index i = 0; i < loaded[k].length(); ++i) {
      EXPECT_NEAR(loaded[k].times[static_cast<std::size_t>(i)],
                  ds.train[k].times[static_cast<std::size_t>(i)], 1e-9);
      for (Index c = 0; c < 5; ++c) {
        EXPECT_EQ(loaded[k].mask.at(i, c), ds.train[k].mask.at(i, c));
        if (loaded[k].mask.at(i, c) > 0) {
          EXPECT_NEAR(loaded[k].values.at(i, c), ds.train[k].values.at(i, c),
                      1e-5);
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, RoundTripPreservesLabels) {
  SyntheticPeriodicConfig config;
  config.num_series = 10;
  config.grid_points = 8;
  Dataset ds = MakeSyntheticPeriodic(config);
  const std::string path = ::testing::TempDir() + "/labels.csv";
  ASSERT_TRUE(SaveCsv(ds.train, path));
  std::string error;
  auto loaded = LoadCsv(path, 1, /*has_label=*/true, &error);
  ASSERT_EQ(loaded.size(), ds.train.size()) << error;
  for (std::size_t k = 0; k < loaded.size(); ++k)
    EXPECT_EQ(loaded[k].label, ds.train[k].label);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace diffode::data
