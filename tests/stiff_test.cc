// Implicit (stiff) solvers and dense output.

#include <gtest/gtest.h>

#include <cmath>

#include "hippo/hippo.h"
#include "ode/dense_output.h"
#include "ode/stiff.h"

namespace diffode::ode {
namespace {

OdeFunc ExpDecay(Scalar k) {
  return [k](Scalar, const Tensor& y) { return y * -k; };
}

TEST(StiffTest, ImplicitEulerAccuracyMildProblem) {
  StiffOptions options;
  options.step = 0.01;
  Tensor y = ImplicitEulerIntegrate(ExpDecay(1.0), Tensor::Ones(Shape{1, 1}),
                                    0.0, 1.0, options);
  EXPECT_NEAR(y.item(), std::exp(-1.0), 5e-3);  // first order
}

TEST(StiffTest, TrapezoidalSecondOrderConvergence) {
  auto solve = [&](Scalar h) {
    StiffOptions options;
    options.step = h;
    return TrapezoidalIntegrate(ExpDecay(1.0), Tensor::Ones(Shape{1, 1}), 0.0,
                                1.0, options)
        .item();
  };
  const Scalar exact = std::exp(-1.0);
  const Scalar e1 = std::fabs(solve(0.1) - exact);
  const Scalar e2 = std::fabs(solve(0.05) - exact);
  EXPECT_NEAR(e1 / e2, 4.0, 1.0);
}

TEST(StiffTest, StableOnStiffProblemWhereExplicitExplodes) {
  // lambda = -1000, step 0.1: explicit Euler amplification |1 + h*l| = 99;
  // implicit methods must decay monotonically.
  const Scalar k = 1000.0;
  StiffOptions options;
  options.step = 0.1;
  Tensor y_ie = ImplicitEulerIntegrate(ExpDecay(k), Tensor::Ones(Shape{1, 1}),
                                       0.0, 1.0, options);
  EXPECT_LT(std::fabs(y_ie.item()), 1e-6);
  Tensor y_tr = TrapezoidalIntegrate(ExpDecay(k), Tensor::Ones(Shape{1, 1}),
                                     0.0, 1.0, options);
  EXPECT_LT(std::fabs(y_tr.item()), 1.0);
  // The explicit comparison point:
  ode::SolveOptions explicit_options;
  explicit_options.method = ode::Method::kEuler;
  explicit_options.step = 0.1;
  Tensor y_explicit = Integrate(ExpDecay(k), Tensor::Ones(Shape{1, 1}), 0.0,
                                1.0, explicit_options);
  EXPECT_GT(std::fabs(y_explicit.item()), 1e6);
}

TEST(StiffTest, HandlesRawHippoLegsBlock) {
  // The motivating case from DESIGN.md §5.1: the unscaled LegS block that
  // explodes under explicit midpoint at step 0.5 is handled implicitly.
  Tensor a = hippo::MakeLegsA(12);
  OdeFunc f = [&a](Scalar, const Tensor& c) { return a.MatMul(c); };
  StiffOptions options;
  options.step = 0.5;
  Tensor c0 = Tensor::Full(Shape{12, 1}, 0.1);
  Tensor c = TrapezoidalIntegrate(f, c0, 0.0, 10.0, options);
  EXPECT_TRUE(c.AllFinite());
  EXPECT_LT(c.Norm(), c0.Norm());
}

TEST(StiffTest, NonlinearNewtonConvergence) {
  // y' = -y^3, y(0)=1: solution y(t) = 1/sqrt(1+2t).
  OdeFunc f = [](Scalar, const Tensor& y) {
    return y.Map([](Scalar v) { return -v * v * v; });
  };
  StiffOptions options;
  options.step = 0.02;
  Tensor y = TrapezoidalIntegrate(f, Tensor::Ones(Shape{1, 1}), 0.0, 2.0,
                                  options);
  EXPECT_NEAR(y.item(), 1.0 / std::sqrt(5.0), 1e-4);
}

TEST(StiffTest, MultiDimensionalCoupledSystem) {
  // Rotation + damping: y' = [[-0.1,-1],[1,-0.1]] y; |y(t)| = e^{-0.1 t}.
  Tensor a = Tensor::FromRows(2, 2, {-0.1, -1.0, 1.0, -0.1});
  OdeFunc f = [&a](Scalar, const Tensor& y) {
    return y.MatMul(a.Transposed());
  };
  StiffOptions options;
  options.step = 0.01;
  Tensor y = TrapezoidalIntegrate(f, Tensor::FromRows(1, 2, {1.0, 0.0}), 0.0,
                                  3.0, options);
  EXPECT_NEAR(y.Norm(), std::exp(-0.3), 1e-3);
}

// ---------------------------------------------------------------------------
// Dense output.
// ---------------------------------------------------------------------------

TEST(DenseOutputTest, MatchesExactSolutionBetweenNodes) {
  DenseSolution dense(ExpDecay(1.0), Tensor::Ones(Shape{1, 1}), 0.0, 2.0,
                      0.2);
  for (Scalar t = 0.05; t < 2.0; t += 0.13)
    EXPECT_NEAR(dense.Evaluate(t).item(), std::exp(-t), 1e-5) << t;
}

TEST(DenseOutputTest, DerivativeMatchesRhs) {
  DenseSolution dense(ExpDecay(1.0), Tensor::Ones(Shape{1, 1}), 0.0, 1.0,
                      0.1);
  for (Scalar t = 0.05; t < 1.0; t += 0.17)
    EXPECT_NEAR(dense.Derivative(t).item(), -std::exp(-t), 1e-4) << t;
}

TEST(DenseOutputTest, NodesAreExact) {
  DenseSolution dense(ExpDecay(2.0), Tensor::Ones(Shape{1, 1}), 0.0, 1.0,
                      0.25);
  for (std::size_t i = 0; i < dense.times().size(); ++i) {
    const Scalar t = dense.times()[i];
    EXPECT_LT((dense.Evaluate(t) - dense.states()[i]).MaxAbs(), 1e-12);
  }
}

TEST(DenseOutputTest, BackwardTimeSpan) {
  DenseSolution dense(ExpDecay(1.0), Tensor::Ones(Shape{1, 1}), 0.0, -1.0,
                      0.1);
  EXPECT_NEAR(dense.Evaluate(-0.5).item(), std::exp(0.5), 1e-5);
  EXPECT_NEAR(dense.t_min(), -1.0, 1e-12);
  EXPECT_NEAR(dense.t_max(), 0.0, 1e-12);
}

TEST(DenseOutputTest, ClampsOutsideSpan) {
  DenseSolution dense(ExpDecay(1.0), Tensor::Ones(Shape{1, 1}), 0.0, 1.0,
                      0.1);
  EXPECT_NEAR(dense.Evaluate(5.0).item(), dense.Evaluate(1.0).item(), 1e-12);
  EXPECT_NEAR(dense.Evaluate(-5.0).item(), dense.Evaluate(0.0).item(), 1e-12);
}

TEST(DenseOutputTest, OscillatorAccuracy) {
  OdeFunc rotation = [](Scalar, const Tensor& y) {
    Tensor d(y.shape());
    d[0] = -y[1];
    d[1] = y[0];
    return d;
  };
  DenseSolution dense(rotation, Tensor::FromVector({1.0, 0.0}), 0.0, 6.28,
                      0.05);
  for (Scalar t = 0.3; t < 6.0; t += 0.71) {
    Tensor y = dense.Evaluate(t);
    EXPECT_NEAR(y[0], std::cos(t), 1e-4);
    EXPECT_NEAR(y[1], std::sin(t), 1e-4);
  }
}

}  // namespace
}  // namespace diffode::ode
