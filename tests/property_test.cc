// Parameterized property sweeps: invariants that must hold across whole
// parameter grids, not just single examples.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dhs.h"
#include "linalg/pinv.h"
#include "ode/solver.h"
#include "sparsity/hoyer.h"
#include "sparsity/pt_solver.h"
#include "tensor/random.h"

namespace diffode {
namespace {

// ---------------------------------------------------------------------------
// ODE solver convergence orders.
// ---------------------------------------------------------------------------

struct OrderCase {
  ode::Method method;
  double expected_order;
  const char* name;
};

class SolverOrderTest : public ::testing::TestWithParam<OrderCase> {};

TEST_P(SolverOrderTest, EmpiricalOrderMatches) {
  const OrderCase& param = GetParam();
  // Non-autonomous scalar problem with known solution:
  // y' = y * cos(t), y(0)=1 -> y(t) = exp(sin(t)).
  ode::OdeFunc f = [](Scalar t, const Tensor& y) { return y * std::cos(t); };
  auto solve = [&](Scalar h) {
    ode::SolveOptions options;
    options.method = param.method;
    options.step = h;
    options.corrector_iters = 3;
    return ode::Integrate(f, Tensor::Ones(Shape{1, 1}), 0.0, 2.0, options)
        .item();
  };
  const Scalar exact = std::exp(std::sin(2.0));
  const double e1 = std::fabs(solve(0.05) - exact);
  const double e2 = std::fabs(solve(0.025) - exact);
  ASSERT_GT(e1, 0.0);
  ASSERT_GT(e2, 0.0);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, param.expected_order, 0.6) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, SolverOrderTest,
    ::testing::Values(OrderCase{ode::Method::kEuler, 1.0, "euler"},
                      OrderCase{ode::Method::kMidpoint, 2.0, "midpoint"},
                      OrderCase{ode::Method::kRk4, 4.0, "rk4"},
                      OrderCase{ode::Method::kImplicitAdams, 4.0, "adams"}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Attention inversion invariants over an (n, d) grid.
// ---------------------------------------------------------------------------

class AttentionGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AttentionGridTest, RecoveryReconstructsSAndSumsToOne) {
  const Index n = std::get<0>(GetParam());
  const Index d = std::get<1>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n * 100 + d));
  Tensor z = rng.NormalTensor(Shape{n, d});
  sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);
  // Random softmax attention and its DHS.
  Tensor logits = rng.NormalTensor(Shape{1, n});
  const Scalar m = logits.Max();
  Tensor p_true = logits.Map([m](Scalar x) { return std::exp(x - m); });
  p_true *= 1.0 / p_true.Sum();
  Tensor s = p_true.MatMul(z);
  Tensor p = sparsity::RecoverP(inv, s, sparsity::PtStrategy::kMaxHoyer);
  EXPECT_LT((p.MatMul(z) - s).MaxAbs(), 1e-6) << n << "x" << d;
  EXPECT_NEAR(p.Sum(), 1.0, 1e-6) << n << "x" << d;
}

TEST_P(AttentionGridTest, DhsDerivativeMatchesFiniteDifference) {
  const Index n = std::get<0>(GetParam());
  const Index d = std::get<1>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n * 7 + d));
  Tensor z_mat = rng.NormalTensor(Shape{n, d});
  Tensor z0 = rng.NormalTensor(Shape{1, d});
  Tensor vel = rng.NormalTensor(Shape{1, d});
  ag::Var z = ag::Constant(z_mat);
  core::DhsContext ctx = core::BuildDhsContext(z, 0.0);
  auto s_of_t = [&](Scalar t) {
    return core::DhsForward(ctx, ag::Constant(z0 + vel * t)).value();
  };
  Tensor logits =
      z0.MatMul(z_mat.Transposed()) * (1.0 / std::sqrt(Scalar(d)));
  const Scalar m = logits.Max();
  Tensor p = logits.Map([m](Scalar x) { return std::exp(x - m); });
  p *= 1.0 / p.Sum();
  ag::Var ds =
      core::DhsDerivative(ctx, ag::Constant(vel), ag::Constant(p));
  const Scalar eps = 1e-6;
  Tensor fd = (s_of_t(eps) - s_of_t(-eps)) * (1.0 / (2.0 * eps));
  EXPECT_LT((ds.value() - fd).MaxAbs(), 1e-5) << n << "x" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AttentionGridTest,
    ::testing::Combine(::testing::Values(6, 10, 20, 40),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Moore-Penrose conditions over a shape sweep.
// ---------------------------------------------------------------------------

class PinvShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PinvShapeTest, FourConditions) {
  const Index r = std::get<0>(GetParam());
  const Index c = std::get<1>(GetParam());
  Rng rng(static_cast<std::uint64_t>(r * 31 + c));
  Tensor a = rng.NormalTensor(Shape{r, c});
  Tensor g = linalg::PInverse(a);
  const Scalar tol = 1e-8;
  EXPECT_LT((a.MatMul(g).MatMul(a) - a).MaxAbs(), tol);
  EXPECT_LT((g.MatMul(a).MatMul(g) - g).MaxAbs(), tol);
  Tensor ag_prod = a.MatMul(g);
  EXPECT_LT((ag_prod - ag_prod.Transposed()).MaxAbs(), tol);
  Tensor ga_prod = g.MatMul(a);
  EXPECT_LT((ga_prod - ga_prod.Transposed()).MaxAbs(), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PinvShapeTest,
    ::testing::Combine(::testing::Values(3, 8, 15),
                       ::testing::Values(3, 8, 15)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Hoyer metric invariants over random non-negative vectors.
// ---------------------------------------------------------------------------

class HoyerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HoyerPropertyTest, BoundedAndScaleInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Tensor x = rng.UniformTensor(Shape{static_cast<Index>(GetParam())}, 0.0, 1.0);
  const Scalar h = sparsity::Hoyer(x);
  EXPECT_GE(h, -1e-12);
  EXPECT_LE(h, 1.0 + 1e-12);
  EXPECT_NEAR(sparsity::Hoyer(x * 13.0), h, 1e-10);
}

TEST_P(HoyerPropertyTest, RobinHoodTransferNeverIncreases) {
  // Property (a): moving mass from a larger entry to a smaller one (keeping
  // the sum) cannot increase the metric.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 999);
  const Index n = static_cast<Index>(GetParam());
  Tensor x = rng.UniformTensor(Shape{n}, 0.1, 1.0);
  // Find max and min entries.
  Index hi = 0, lo = 0;
  for (Index i = 0; i < n; ++i) {
    if (x[i] > x[hi]) hi = i;
    if (x[i] < x[lo]) lo = i;
  }
  if (hi == lo) GTEST_SKIP();
  const Scalar before = sparsity::Hoyer(x);
  const Scalar alpha = 0.25 * (x[hi] - x[lo]);
  Tensor y = x;
  y[hi] -= alpha;
  y[lo] += alpha;
  EXPECT_LE(sparsity::Hoyer(y), before + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HoyerPropertyTest,
                         ::testing::Values(4, 8, 16, 64, 256));

// ---------------------------------------------------------------------------
// Exact KKT vs relaxed closed form on small instances.
// ---------------------------------------------------------------------------

class KktSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(KktSweepTest, ExactSolutionFeasibleAndReconstructs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const Index n = 8, d = 3;
  Tensor z = rng.NormalTensor(Shape{n, d});
  sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);
  Tensor logits = rng.NormalTensor(Shape{1, n});
  const Scalar m = logits.Max();
  Tensor p_true = logits.Map([m](Scalar x) { return std::exp(x - m); });
  p_true *= 1.0 / p_true.Sum();
  Tensor s = p_true.MatMul(z);
  Tensor p = sparsity::MaxHoyerExactKkt(inv, s);
  if (p.numel() == 0) GTEST_SKIP() << "no KKT point for this instance";
  EXPECT_NEAR(p.Sum(), 1.0, 1e-6);
  for (Index i = 0; i < n; ++i) EXPECT_GE(p[i], -1e-6);
  EXPECT_LT((p.MatMul(z) - s).MaxAbs(), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KktSweepTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace diffode
