// Grad-mode contract: a forward pass under ag::NoGradScope builds no tape —
// no nodes, no parent edges, no backward closures — and produces values that
// are bitwise identical to the grad-on forward, at any thread count and on
// both kernel backends.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "autograd/ops.h"
#include "baselines/zoo.h"
#include "core/alloc_stats.h"
#include "core/diffode_model.h"
#include "core/parallel.h"
#include "data/generators.h"
#include "tensor/buffer_pool.h"
#include "tensor/random.h"
#include "tensor/simd.h"

namespace diffode {
namespace {

using core::AllocStats;

struct IsaGuard {
  explicit IsaGuard(simd::Isa isa) : prev(simd::ActiveIsa()) {
    EXPECT_TRUE(simd::SetActiveIsa(isa));
  }
  ~IsaGuard() { simd::SetActiveIsa(prev); }
  simd::Isa prev;
};

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { parallel::ThreadPool::SetNumThreads(n); }
  ~ThreadCountGuard() { parallel::ThreadPool::SetNumThreads(0); }
};

std::vector<simd::Isa> SupportedIsas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::IsaSupported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::IsaSupported(simd::Isa::kAvx512))
    isas.push_back(simd::Isa::kAvx512);
  return isas;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.shape() == b.shape()) << what;
  for (Index i = 0; i < a.numel(); ++i) {
    const Scalar av = a[i], bv = b[i];
    std::uint64_t ia, ib;
    std::memcpy(&ia, &av, sizeof(ia));
    std::memcpy(&ib, &bv, sizeof(ib));
    EXPECT_EQ(ia, ib) << what << " i=" << i << " a=" << av << " b=" << bv;
  }
}

core::DiffOdeConfig TinyConfig() {
  core::DiffOdeConfig config;
  config.input_dim = 1;
  config.latent_dim = 8;
  config.hippo_dim = 6;
  config.info_dim = 6;
  config.mlp_hidden = 12;
  config.num_classes = 2;
  config.step = 0.5;
  // Exercise both aux-loss gates: the consistency anchors (default on) and
  // the optional Hoyer regularizer.
  config.hoyer_weight = 0.05;
  return config;
}

data::IrregularSeries TinySeries(std::uint64_t seed) {
  Rng rng(seed);
  data::IrregularSeries s;
  const Index n = 10;
  s.values = Tensor(Shape{n, 1});
  s.mask = Tensor::Ones(Shape{n, 1});
  Scalar t = 0.0;
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.2, 1.0);
    s.times.push_back(t);
    s.values.at(i, 0) = std::sin(t) + rng.Normal(0.0, 0.05);
  }
  s.label = 1;
  return s;
}

TEST(GradModeTest, DefaultsOnAndScopesNestAndRestore) {
  EXPECT_TRUE(ag::GradMode::IsEnabled());
  {
    ag::NoGradScope outer;
    EXPECT_FALSE(ag::GradMode::IsEnabled());
    {
      ag::NoGradScope inner;
      EXPECT_FALSE(ag::GradMode::IsEnabled());
    }
    // Inner exit must restore the outer (still disabled) mode.
    EXPECT_FALSE(ag::GradMode::IsEnabled());
  }
  EXPECT_TRUE(ag::GradMode::IsEnabled());
}

TEST(GradModeTest, GradModeIsThreadLocal) {
  ag::NoGradScope no_grad;
  ASSERT_FALSE(ag::GradMode::IsEnabled());
  // The scope on the submitting thread must not leak into pool workers
  // (they keep their own default-enabled mode). The caller participates in
  // Run, so only shards that landed on *other* threads are asserted.
  const std::thread::id self = std::this_thread::get_id();
  constexpr Index kShards = 16;
  std::vector<unsigned char> enabled(kShards, 0);
  std::vector<std::thread::id> ran_on(kShards);
  ThreadCountGuard tg(4);
  parallel::ThreadPool::Get().Run(kShards, [&](Index i) {
    enabled[static_cast<std::size_t>(i)] = ag::GradMode::IsEnabled() ? 1 : 0;
    ran_on[static_cast<std::size_t>(i)] = std::this_thread::get_id();
  });
  for (Index i = 0; i < kShards; ++i) {
    if (ran_on[static_cast<std::size_t>(i)] == self) {
      EXPECT_EQ(enabled[static_cast<std::size_t>(i)], 0) << "shard " << i;
    } else {
      EXPECT_EQ(enabled[static_cast<std::size_t>(i)], 1) << "shard " << i;
    }
  }
}

TEST(GradModeTest, ConstantIsValueOnlyUnderNoGrad) {
  ag::NoGradScope no_grad;
  const AllocStats::Snapshot before = AllocStats::Read();
  ag::Var c = ag::Constant(Tensor::Ones(Shape{2, 3}));
  const AllocStats::Snapshot d = AllocStats::Delta(before, AllocStats::Read());
  EXPECT_TRUE(c.defined());
  EXPECT_EQ(c.node(), nullptr);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_EQ(d.value_only_vars, 1u);
  EXPECT_EQ(d.arena_nodes, 0u);
  EXPECT_EQ(d.heap_nodes, 0u);
}

TEST(GradModeTest, ParamsKeepTheirNodeUnderNoGrad) {
  // A model constructed (or a checkpoint loaded) inside a NoGradScope must
  // still produce real parameter nodes — only non-trainable wraps go
  // value-only.
  ag::NoGradScope no_grad;
  ag::Var p = ag::Param(Tensor::Ones(Shape{2, 2}));
  ASSERT_NE(p.node(), nullptr);
  EXPECT_TRUE(p.requires_grad());
}

TEST(GradModeTest, OpsShortCircuitToValueOnlyResults) {
  ag::Var p = ag::Param(Tensor::Full(Shape{1, 4}, 2.0));
  ag::NoGradScope no_grad;
  ag::Var y = ag::MulScalar(ag::Tanh(p), 3.0);
  EXPECT_TRUE(y.defined());
  EXPECT_EQ(y.node(), nullptr);  // no tape even with a param input
  EXPECT_NEAR(y.value().at(0, 0), 3.0 * std::tanh(2.0), 1e-12);
}

TEST(GradModeTest, DetachBlocksGradientFlow) {
  ag::Var p = ag::Param(Tensor::Full(Shape{1, 3}, 1.5));
  ag::Var d = ag::Mul(p, p).Detach();
  EXPECT_EQ(d.node(), nullptr);
  EXPECT_NEAR(d.value().at(0, 0), 2.25, 1e-12);
  // Using the detached value in a grad-mode graph wraps it as a constant
  // leaf: the loss differentiates w.r.t. q but nothing reaches p.
  ag::Var q = ag::Param(Tensor::Ones(Shape{1, 3}));
  ag::Var loss = ag::Sum(ag::Mul(d, q));
  loss.Backward();
  EXPECT_NEAR(q.grad().at(0, 0), 2.25, 1e-12);
  for (Index i = 0; i < 3; ++i) EXPECT_EQ(p.grad().at(0, i), 0.0);
}

TEST(NoGradTest, ForwardAllocatesZeroTapeNodes) {
  core::DiffOde model(TinyConfig());
  data::IrregularSeries s = TinySeries(7);
  // Warm pass so lazy one-time setup doesn't count.
  {
    ag::NoGradScope no_grad;
    (void)model.ClassifyLogits(s);
    (void)model.TakeAuxiliaryLoss();
  }
  ag::TapeArena::Scope arena_scope;
  tensor::BufferPool::Scope pool_scope;
  ag::NoGradScope no_grad;
  const AllocStats::Snapshot before = AllocStats::Read();
  ag::Var logits = model.ClassifyLogits(s);
  (void)model.TakeAuxiliaryLoss();
  const AllocStats::Snapshot d = AllocStats::Delta(before, AllocStats::Read());
  EXPECT_TRUE(logits.defined());
  EXPECT_EQ(d.arena_nodes, 0u);  // the whole forward is node-free
  EXPECT_EQ(d.heap_nodes, 0u);
  EXPECT_GT(d.value_only_vars, 0u);
}

TEST(NoGradTest, NoAuxiliaryLossUnderNoGrad) {
  core::DiffOde model(TinyConfig());
  data::IrregularSeries s = TinySeries(8);
  {
    // Grad-on forward: the consistency term (weight 0.1 by default) and the
    // Hoyer term land in the aux slot.
    (void)model.ClassifyLogits(s);
    ag::Var aux = model.TakeAuxiliaryLoss();
    EXPECT_TRUE(aux.defined());
  }
  {
    ag::NoGradScope no_grad;
    (void)model.ClassifyLogits(s);
    ag::Var aux = model.TakeAuxiliaryLoss();
    EXPECT_FALSE(aux.defined());  // training-only terms are skipped
  }
}

// The tentpole equivalence: eval outputs are bitwise identical with the tape
// on or off, for every (threads, ISA) combination the build supports.
TEST(NoGradTest, DiffOdeForwardBitwiseMatchesGradOn) {
  core::DiffOde model(TinyConfig());
  data::IrregularSeries s = TinySeries(11);
  const std::vector<Scalar> queries = {s.times[2] + 0.05,
                                       s.times.back() + 0.7};
  for (simd::Isa isa : SupportedIsas()) {
    IsaGuard ig(isa);
    for (int threads : {1, 4}) {
      ThreadCountGuard tg(threads);
      (void)model.TakeAuxiliaryLoss();
      Tensor logits_grad = model.ClassifyLogits(s).value();
      (void)model.TakeAuxiliaryLoss();
      std::vector<Tensor> preds_grad;
      for (auto& v : model.PredictAt(s, queries))
        preds_grad.push_back(v.value());
      (void)model.TakeAuxiliaryLoss();

      ag::NoGradScope no_grad;
      Tensor logits_ng = model.ClassifyLogits(s).value();
      (void)model.TakeAuxiliaryLoss();
      ExpectBitwiseEqual(logits_ng, logits_grad, simd::IsaName(isa));
      std::vector<ag::Var> preds_ng = model.PredictAt(s, queries);
      (void)model.TakeAuxiliaryLoss();
      ASSERT_EQ(preds_ng.size(), preds_grad.size());
      for (std::size_t k = 0; k < preds_ng.size(); ++k)
        ExpectBitwiseEqual(preds_ng[k].value(), preds_grad[k],
                           simd::IsaName(isa));
    }
  }
}

// Same equivalence across representative baselines (recurrent, decayed,
// ODE-solver based) so the whole zoo is known to be mode-agnostic.
TEST(NoGradTest, BaselineForwardBitwiseMatchesGradOn) {
  data::IrregularSeries s = TinySeries(13);
  const std::vector<Scalar> queries = {s.times[4] + 0.1};
  for (const char* name : {"GRU-D", "ODE-RNN", "Latent ODE"}) {
    baselines::BaselineConfig config;
    config.input_dim = 1;
    config.hidden_dim = 8;
    config.hippo_dim = 6;
    config.step = 0.5;
    auto model = baselines::MakeBaseline(name, config);
    ASSERT_NE(model, nullptr) << name;
    Tensor logits_grad = model->ClassifyLogits(s).value();
    Tensor pred_grad = model->PredictAt(s, queries)[0].value();
    ag::NoGradScope no_grad;
    ExpectBitwiseEqual(model->ClassifyLogits(s).value(), logits_grad, name);
    ExpectBitwiseEqual(model->PredictAt(s, queries)[0].value(), pred_grad,
                       name);
  }
}

}  // namespace
}  // namespace diffode
