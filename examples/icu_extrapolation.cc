// Forecast the second half of an ICU stay from the first half on the
// PhysioNet-like dataset — the paper's extrapolation task. Compares DIFFODE
// with a discrete GRU baseline to show the value of the continuous DHS.
//
//   ./examples/icu_extrapolation [--quick]

#include <cstdio>
#include <cstring>

#include "baselines/zoo.h"
#include "core/diffode_model.h"
#include "data/generators.h"
#include "data/splits.h"
#include "train/trainer.h"

using namespace diffode;

namespace {

Scalar TrainAndEvaluate(core::SequenceModel* model, const data::Dataset& ds,
                        Index epochs) {
  train::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = 8;
  options.lr = 3e-3;
  options.patience = epochs;
  train::TrainRegressor(model, ds, train::RegressionTask::kExtrapolation,
                        options);
  return train::EvaluateMse(model, ds.test,
                            train::RegressionTask::kExtrapolation, 0.3, 17);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::printf("ICU vitals extrapolation (PhysioNet-like)\n");
  std::printf("==========================================\n\n");

  data::PhysioNetLikeConfig dconfig;
  dconfig.num_patients = quick ? 20 : 48;
  dconfig.num_channels = 12;
  dconfig.max_obs_per_patient = 40;
  data::Dataset ds = data::MakePhysioNetLike(dconfig);
  data::NormalizeDataset(&ds);
  std::printf("patients: %lld, channels: %lld, horizon: 48 h\n\n",
              static_cast<long long>(ds.TotalSeries()),
              static_cast<long long>(ds.num_features));

  const Index epochs = quick ? 4 : 15;

  core::DiffOdeConfig mconfig;
  mconfig.input_dim = ds.num_features;
  mconfig.latent_dim = 16;
  mconfig.hippo_dim = 12;
  mconfig.info_dim = 12;
  mconfig.step = 1.0;
  core::DiffOde diffode(mconfig);
  const Scalar diffode_mse = TrainAndEvaluate(&diffode, ds, epochs);

  baselines::BaselineConfig bconfig;
  bconfig.input_dim = ds.num_features;
  bconfig.hidden_dim = 16;
  auto gru = baselines::MakeBaseline("GRU", bconfig);
  const Scalar gru_mse = TrainAndEvaluate(gru.get(), ds, epochs);

  std::printf("extrapolation MSE (x 1e-2):\n");
  std::printf("  DIFFODE : %.4f\n", diffode_mse);
  std::printf("  GRU     : %.4f\n", gru_mse);
  std::printf("\nthe continuous DHS lets DIFFODE carry the patient state "
              "forward in time\ninstead of pinning every forecast to the "
              "last discrete hidden state.\n");
  return 0;
}
