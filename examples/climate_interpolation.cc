// Interpolate missing climate observations on the USHCN-like dataset — the
// paper's headline interpolation task. Trains DIFFODE, reports MSE in the
// paper's x 1e-2 units, and prints a reconstructed vs. true excerpt for one
// held-out station.
//
//   ./examples/climate_interpolation [--quick]

#include <cstdio>
#include <cstring>

#include "core/diffode_model.h"
#include "data/generators.h"
#include "data/splits.h"
#include "train/trainer.h"

using namespace diffode;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::printf("DIFFODE climate interpolation (USHCN-like)\n");
  std::printf("===========================================\n\n");

  data::UshcnLikeConfig dconfig;
  dconfig.num_stations = quick ? 20 : 48;
  dconfig.num_days = quick ? 80 : 150;
  data::Dataset ds = data::MakeUshcnLike(dconfig);
  data::NormalizeDataset(&ds);
  std::printf("stations: %lld, variables: %lld (precip, snowfall, snow "
              "depth, tmin, tmax)\n\n",
              static_cast<long long>(ds.TotalSeries()),
              static_cast<long long>(ds.num_features));

  core::DiffOdeConfig mconfig;
  mconfig.input_dim = ds.num_features;
  mconfig.latent_dim = 16;
  mconfig.hippo_dim = 12;
  mconfig.info_dim = 12;
  mconfig.step = 1.0;
  core::DiffOde model(mconfig);

  train::TrainOptions options;
  options.epochs = quick ? 4 : 15;
  options.batch_size = 8;
  options.lr = 3e-3;
  options.patience = options.epochs;
  options.verbose = true;
  train::TrainRegressor(&model, ds, train::RegressionTask::kInterpolation,
                        options);

  const Scalar mse = train::EvaluateMse(
      &model, ds.test, train::RegressionTask::kInterpolation, 0.3, 17);
  std::printf("\ntest interpolation MSE (x 1e-2): %.4f\n", mse);

  // Show a reconstruction excerpt: hold out 30% of one station's entries.
  Rng rng(5);
  data::TaskView view = data::MakeInterpolationView(ds.test.front(), 0.3, rng);
  std::printf("\nheld-out tmax reconstructions (station 0):\n");
  std::printf("%10s %12s %12s\n", "day", "true", "predicted");
  int shown = 0;
  for (Index i = 0; i < view.target.length() && shown < 8; ++i) {
    if (view.target.mask.at(i, 4) > 0) {  // channel 4 = tmax
      auto pred = model.PredictAt(
          view.context, {view.target.times[static_cast<std::size_t>(i)]});
      std::printf("%10.0f %12.3f %12.3f\n",
                  view.target.times[static_cast<std::size_t>(i)],
                  view.target.values.at(i, 4), pred[0].value().at(0, 4));
      ++shown;
    }
  }
  return 0;
}
