// Classify windows of a partially observed chaotic system (Lorenz-96),
// mirroring the paper's dynamical-systems experiment: the model sees
// Poisson-thinned observations of all-but-one state dimension and must
// infer where the hidden dimension is heading.
//
//   ./examples/classify_chaotic [--quick]

#include <cstdio>
#include <cstring>

#include "core/diffode_model.h"
#include "data/generators.h"
#include "data/splits.h"
#include "train/trainer.h"

using namespace diffode;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::printf("DIFFODE on a chaotic attractor (Lorenz-96)\n");
  std::printf("==========================================\n\n");

  data::DynamicalSystemConfig dconfig;
  dconfig.dim = 12;
  dconfig.trajectory_steps = quick ? 600 : 1800;
  dconfig.window = 30;
  dconfig.keep_rate = 0.3;  // Poisson-thinned, as in the paper
  data::Dataset ds = data::MakeLorenz96(dconfig);
  data::NormalizeDataset(&ds);
  std::printf("dataset: %lld train / %lld val / %lld test windows, "
              "%lld observed dimensions (1 hidden)\n",
              static_cast<long long>(ds.train.size()),
              static_cast<long long>(ds.val.size()),
              static_cast<long long>(ds.test.size()),
              static_cast<long long>(ds.num_features));

  core::DiffOdeConfig mconfig;
  mconfig.input_dim = ds.num_features;
  mconfig.latent_dim = 16;
  mconfig.hippo_dim = 12;
  mconfig.info_dim = 12;
  mconfig.num_classes = 2;
  mconfig.step = 0.5;
  core::DiffOde model(mconfig);

  train::TrainOptions options;
  options.epochs = quick ? 4 : 14;
  options.batch_size = 16;
  options.lr = 3e-3;
  options.patience = options.epochs;
  options.verbose = true;
  train::FitResult fit = train::TrainClassifier(&model, ds, options);

  const Scalar acc = train::EvaluateAccuracy(&model, ds.test);
  std::printf("\ntest top-1 accuracy: %.3f (best val %.3f, %.2fs/epoch)\n",
              acc, fit.best_val_metric, fit.seconds_per_epoch);
  return 0;
}
