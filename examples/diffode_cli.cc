// Command-line front end for the library: generate synthetic datasets to
// CSV, train any model in the zoo (or DIFFODE) on a CSV dataset, and
// evaluate on the three tasks. A downstream user can drive the whole system
// without writing C++.
//
//   diffode_cli generate --dataset=ushcn --out=climate.csv
//   diffode_cli train --data=climate.csv --channels=5 --task=interpolation
//               --model=DIFFODE --epochs=10 --save=weights.bin
//   diffode_cli train --data=labeled.csv --channels=1 --labels
//               --task=classification --model=DIFFODE
//   diffode_cli predict --data=climate.csv --channels=5
//               --load=weights.bin --at=12.5,14.0 --batch=32
//
// Flags use --key=value form; `diffode_cli help` lists everything.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "baselines/zoo.h"
#include "core/batch_predictor.h"
#include "core/diffode_model.h"
#include "data/csv_loader.h"
#include "data/generators.h"
#include "data/splits.h"
#include "nn/serialize.h"
#include "train/trainer.h"

namespace {

using namespace diffode;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::printf(
      "usage:\n"
      "  diffode_cli generate --dataset=<synthetic|ushcn|physionet|largest|"
      "lorenz96> --out=<csv> [--count=N]\n"
      "  diffode_cli train --data=<csv> --channels=F [--labels]\n"
      "      --task=<classification|interpolation|extrapolation>\n"
      "      [--model=DIFFODE] [--epochs=10] [--lr=0.003] [--latent=16]\n"
      "      [--step=0.5] [--save=weights.bin] [--load=weights.bin]\n"
      "  diffode_cli predict --data=<csv> --channels=F --load=weights.bin\n"
      "      --at=<t1,t2,...> [--model=DIFFODE] [--latent=16] [--step=0.5]\n"
      "      [--batch=N]    # serve N sequences per lockstep batch\n"
      "      [--precision=<f64|f32>]  # f32: frozen float serving tier\n"
      "  diffode_cli models     # list available models\n");
  return 1;
}

std::vector<Scalar> ParseTimes(const std::string& csv) {
  std::vector<Scalar> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    if (next > pos) out.push_back(std::stod(csv.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

int RunGenerate(const std::map<std::string, std::string>& flags) {
  const std::string kind = FlagOr(flags, "dataset", "synthetic");
  const std::string out = FlagOr(flags, "out", "dataset.csv");
  const Index count = std::stoll(FlagOr(flags, "count", "60"));
  data::Dataset ds;
  if (kind == "synthetic") {
    data::SyntheticPeriodicConfig config;
    config.num_series = count;
    ds = data::MakeSyntheticPeriodic(config);
  } else if (kind == "ushcn") {
    data::UshcnLikeConfig config;
    config.num_stations = count;
    ds = data::MakeUshcnLike(config);
  } else if (kind == "physionet") {
    data::PhysioNetLikeConfig config;
    config.num_patients = count;
    ds = data::MakePhysioNetLike(config);
  } else if (kind == "largest") {
    data::LargeStLikeConfig config;
    config.num_sensors = count;
    ds = data::MakeLargeStLike(config);
  } else if (kind == "lorenz96") {
    data::DynamicalSystemConfig config;
    config.trajectory_steps = count * config.window;
    ds = data::MakeLorenz96(config);
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", kind.c_str());
    return 1;
  }
  std::vector<data::IrregularSeries> all = ds.train;
  all.insert(all.end(), ds.val.begin(), ds.val.end());
  all.insert(all.end(), ds.test.begin(), ds.test.end());
  if (!data::SaveCsv(all, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu series (%lld features) to %s\n", all.size(),
              static_cast<long long>(ds.num_features), out.c_str());
  return 0;
}

int RunTrain(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "data", "");
  if (path.empty()) return Usage();
  const Index channels = std::stoll(FlagOr(flags, "channels", "1"));
  const bool labels = flags.count("labels") > 0;
  std::string error;
  auto series = data::LoadCsv(path, channels, labels, &error);
  if (series.empty()) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  // 60/20/20 split in file order.
  data::Dataset ds;
  ds.num_features = channels;
  const std::size_t n = series.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n * 6 / 10) {
      ds.train.push_back(series[i]);
    } else if (i < n * 8 / 10) {
      ds.val.push_back(series[i]);
    } else {
      ds.test.push_back(series[i]);
    }
  }
  if (labels) {
    Index max_label = 0;
    for (const auto& s : series) max_label = std::max(max_label, s.label);
    ds.num_classes = max_label + 1;
  }
  data::NormalizeDataset(&ds);

  const std::string model_name = FlagOr(flags, "model", "DIFFODE");
  const Index latent = std::stoll(FlagOr(flags, "latent", "16"));
  const Scalar step = std::stod(FlagOr(flags, "step", "0.5"));
  std::unique_ptr<core::SequenceModel> model;
  if (model_name == "DIFFODE") {
    core::DiffOdeConfig config;
    config.input_dim = channels;
    config.latent_dim = latent;
    config.hippo_dim = 12;
    config.info_dim = 12;
    config.num_classes = std::max<Index>(ds.num_classes, 2);
    config.step = step;
    model = std::make_unique<core::DiffOde>(config);
  } else {
    baselines::BaselineConfig config;
    config.input_dim = channels;
    config.hidden_dim = latent;
    config.num_classes = std::max<Index>(ds.num_classes, 2);
    config.step = step;
    model = baselines::MakeBaseline(model_name, config);
  }
  auto params = model->Params();
  const std::string load = FlagOr(flags, "load", "");
  if (!load.empty() && !nn::LoadParams(&params, load)) {
    std::fprintf(stderr, "cannot load weights from %s\n", load.c_str());
    return 1;
  }
  std::printf("model %s: %lld parameters\n", model->name().c_str(),
              static_cast<long long>(model->NumParams()));

  train::TrainOptions options;
  options.epochs = std::stoll(FlagOr(flags, "epochs", "10"));
  options.lr = std::stod(FlagOr(flags, "lr", "0.003"));
  options.patience = options.epochs;
  options.verbose = true;
  const std::string task = FlagOr(flags, "task", "classification");
  if (task == "classification") {
    if (!labels) {
      std::fprintf(stderr, "classification needs --labels\n");
      return 1;
    }
    train::TrainClassifier(model.get(), ds, options);
    std::printf("test accuracy: %.4f\n",
                train::EvaluateAccuracy(model.get(), ds.test));
  } else {
    const auto kind = task == "interpolation"
                          ? train::RegressionTask::kInterpolation
                          : train::RegressionTask::kExtrapolation;
    train::TrainRegressor(model.get(), ds, kind, options);
    std::printf("test MSE (x 1e-2): %.4f\n",
                train::EvaluateMse(model.get(), ds.test, kind, 0.3, 17));
  }
  const std::string save = FlagOr(flags, "save", "");
  if (!save.empty()) {
    auto out_params = model->Params();
    if (!nn::SaveParams(out_params, save)) {
      std::fprintf(stderr, "cannot save weights to %s\n", save.c_str());
      return 1;
    }
    std::printf("saved weights to %s\n", save.c_str());
  }
  return 0;
}

// Forward-only serving: reload a checkpoint into a frozen model and predict
// each series at the requested times, tape-free under NoGradScope.
int RunPredict(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "data", "");
  const std::string load = FlagOr(flags, "load", "");
  const std::string at = FlagOr(flags, "at", "");
  if (path.empty() || load.empty() || at.empty()) return Usage();
  const Index channels = std::stoll(FlagOr(flags, "channels", "1"));
  std::string error;
  auto series = data::LoadCsv(path, channels, /*labels=*/false, &error);
  if (series.empty()) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  const std::vector<Scalar> times = ParseTimes(at);
  if (times.empty()) return Usage();

  const std::string model_name = FlagOr(flags, "model", "DIFFODE");
  const Index latent = std::stoll(FlagOr(flags, "latent", "16"));
  const Scalar step = std::stod(FlagOr(flags, "step", "0.5"));
  std::unique_ptr<core::SequenceModel> model;
  if (model_name == "DIFFODE") {
    core::DiffOdeConfig config;
    config.input_dim = channels;
    config.latent_dim = latent;
    config.hippo_dim = 12;
    config.info_dim = 12;
    config.step = step;
    model = std::make_unique<core::DiffOde>(config);
  } else {
    baselines::BaselineConfig config;
    config.input_dim = channels;
    config.hidden_dim = latent;
    config.step = step;
    model = baselines::MakeBaseline(model_name, config);
  }
  auto params = model->Params();
  if (!nn::LoadParams(&params, load)) {
    std::fprintf(stderr,
                 "cannot load weights from %s (architecture mismatch?)\n",
                 load.c_str());
    return 1;
  }
  const std::string precision_name = FlagOr(flags, "precision", "f64");
  if (precision_name != "f64" && precision_name != "f32") {
    std::fprintf(stderr, "unknown --precision=%s (f64|f32)\n",
                 precision_name.c_str());
    return 1;
  }
  const Precision precision =
      precision_name == "f32" ? Precision::kF32 : Precision::kF64;
  model->Freeze(precision);

  const Index exec_batch = std::stoll(FlagOr(flags, "batch", "1"));
  const auto print_row = [&times](std::size_t series_idx,
                                  const std::vector<Tensor>& preds) {
    std::printf("series %zu:", series_idx);
    for (std::size_t k = 0; k < preds.size(); ++k) {
      std::printf("  t=%.3f ->", times[k]);
      const Tensor& row = preds[k];
      for (Index j = 0; j < row.cols(); ++j)
        std::printf(" %.4f", row.at(0, j));
    }
    std::printf("\n");
  };

  if (exec_batch > 1 || precision == Precision::kF32) {
    // Micro-batched serving: up to --batch sequences per lockstep forward.
    // f32 always takes this path — the float engine lives behind the
    // batched forwards; the per-sequence Var path below is f64-only.
    core::BatchPredictor predictor(model.get(), exec_batch);
    std::vector<std::pair<std::size_t, Index>> requests;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i].length() < 2) continue;
      requests.emplace_back(i, predictor.Enqueue(series[i], times));
    }
    predictor.Flush();
    for (const auto& [i, id] : requests)
      print_row(i, predictor.result(id).predictions);
    return 0;
  }

  ag::NoGradScope no_grad;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].length() < 2) continue;
    (void)model->TakeAuxiliaryLoss();
    auto preds = model->PredictAt(series[i], times);
    (void)model->TakeAuxiliaryLoss();
    std::vector<Tensor> rows;
    rows.reserve(preds.size());
    for (const ag::Var& p : preds) rows.push_back(p.value());
    print_row(i, rows);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return RunGenerate(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "predict") return RunPredict(flags);
  if (command == "models") {
    std::printf("DIFFODE\n");
    for (const auto& name : diffode::baselines::BaselineNames())
      std::printf("%s\n", name.c_str());
    return 0;
  }
  return Usage();
}
