// Train a Neural ODE with the checkpointed adjoint solver: the forward pass
// keeps no tape (O(1) memory per step) and gradients are pulled backwards
// through one step at a time — yet they match the fully unrolled tape
// exactly. This example fits dy/dt = f_theta(y) to a damped spiral.
//
//   ./examples/adjoint_training

#include <cmath>
#include <cstdio>

#include "autograd/ops.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "ode/adjoint.h"
#include "tensor/random.h"

using namespace diffode;

int main() {
  std::printf("Neural-ODE training via the checkpointed adjoint\n");
  std::printf("=================================================\n\n");

  // Ground truth: damped rotation y' = A y.
  Tensor a_true = Tensor::FromRows(2, 2, {-0.1, -1.0, 1.0, -0.1});
  ode::OdeFunc truth = [&](Scalar, const Tensor& y) {
    return y.MatMul(a_true.Transposed());
  };

  // Trajectory targets at a few horizon times.
  Tensor y0 = Tensor::FromRows(1, 2, {1.0, 0.0});
  const std::vector<Scalar> horizons = {0.5, 1.0, 1.5, 2.0};
  std::vector<Tensor> targets;
  {
    ode::SolveOptions options;
    options.method = ode::Method::kRk4;
    options.step = 0.01;
    for (Scalar t : horizons)
      targets.push_back(ode::Integrate(truth, y0, 0.0, t, options));
  }

  // Learnable dynamics.
  Rng rng(1);
  nn::Mlp field({2, 16, 2}, rng);
  ode::DiffOdeFunc f = [&](Scalar, const ag::Var& y) {
    return field.Forward(y);
  };
  nn::Adam opt(field.Params(), 5e-3);
  ode::DiffSolveOptions options;
  options.method = ode::DiffMethod::kRk4;
  options.step = 0.1;

  for (int epoch = 0; epoch <= 200; ++epoch) {
    Scalar loss_total = 0.0;
    for (std::size_t k = 0; k < horizons.size(); ++k) {
      // Forward without a tape; the adjoint pass needs only dL/dy(T).
      Tensor y1 = ode::ForwardOnly(f, y0, 0.0, horizons[k], options);
      Tensor diff = y1 - targets[k];
      loss_total += diff.Dot(diff);
      // dL/dy1 of the squared error, then pull it back through the steps —
      // parameter gradients accumulate inside `field` automatically.
      ode::AdjointSolve(f, y0, 0.0, horizons[k], diff * 2.0, options);
    }
    opt.StepAndZero();
    if (epoch % 40 == 0)
      std::printf("epoch %3d  trajectory loss %.6f\n", epoch, loss_total);
  }

  // Inspect the learned vector field against the truth at a point *on*
  // the fitted trajectory (off-trajectory the field is unconstrained).
  Tensor probe;
  {
    ode::SolveOptions fine;
    fine.method = ode::Method::kRk4;
    fine.step = 0.01;
    probe = ode::Integrate(truth, y0, 0.0, 0.75, fine);
  }
  Tensor learned = field.Forward(ag::Constant(probe)).value();
  Tensor expected = probe.MatMul(a_true.Transposed());
  std::printf("\nf(y(0.75))  learned [%7.4f %7.4f]   true [%7.4f %7.4f]\n",
              learned[0], learned[1], expected[0], expected[1]);
  std::printf("\nthe same gradients, without storing the whole trajectory "
              "on the tape.\n");
  return 0;
}
