// Quickstart: build an irregular time series, train DIFFODE on a tiny
// classification problem, and query the continuous hidden state.
//
//   ./examples/quickstart
//
// Walks through the library's three core steps:
//   1. wrap observations in data::IrregularSeries,
//   2. configure and train core::DiffOde,
//   3. classify and predict at arbitrary (unobserved) time points.

#include <cstdio>

#include "autograd/ops.h"
#include "core/diffode_model.h"
#include "nn/optimizer.h"
#include "tensor/random.h"

namespace {

using namespace diffode;

// A sine-ish series observed at irregular times; label = (amplitude > 0).
data::IrregularSeries MakeWave(Scalar amplitude, std::uint64_t seed) {
  Rng rng(seed);
  data::IrregularSeries s;
  const Index n = 12;
  s.values = Tensor(Shape{n, 1});
  s.mask = Tensor::Ones(Shape{n, 1});
  Scalar t = 0.0;
  for (Index i = 0; i < n; ++i) {
    t += rng.Uniform(0.3, 1.2);  // irregular gaps
    s.times.push_back(t);
    s.values.at(i, 0) = amplitude * std::sin(t) + rng.Normal(0.0, 0.05);
  }
  s.label = amplitude > 0 ? 1 : 0;
  return s;
}

}  // namespace

int main() {
  std::printf("DIFFODE quickstart\n==================\n\n");

  // 1. Data: ten irregular series per class.
  std::vector<data::IrregularSeries> train_set;
  for (std::uint64_t k = 0; k < 10; ++k) {
    train_set.push_back(MakeWave(+1.0, 2 * k));
    train_set.push_back(MakeWave(-1.0, 2 * k + 1));
  }

  // 2. Model: the paper's default configuration, scaled down.
  core::DiffOdeConfig config;
  config.input_dim = 1;
  config.latent_dim = 8;
  config.hippo_dim = 8;
  config.info_dim = 8;
  config.num_classes = 2;
  config.step = 0.5;
  core::DiffOde model(config);
  std::printf("model has %lld trainable parameters\n",
              static_cast<long long>(model.NumParams()));

  // 3. Train with Adam on the cross-entropy loss.
  nn::Adam optimizer(model.Params(), /*lr=*/5e-3, /*weight_decay=*/1e-3);
  for (int epoch = 0; epoch < 8; ++epoch) {
    Scalar epoch_loss = 0.0;
    for (const auto& s : train_set) {
      ag::Var loss =
          ag::SoftmaxCrossEntropy(model.ClassifyLogits(s), {s.label});
      epoch_loss += loss.value().item();
      loss.Backward();
    }
    optimizer.ScaleGrads(1.0 / train_set.size());
    optimizer.StepAndZero();
    std::printf("epoch %d  mean loss %.4f\n", epoch,
                epoch_loss / train_set.size());
  }

  // 4. Serve: freeze the trained weights (no more gradients will flow) and
  //    classify a fresh series tape-free under ag::NoGradScope. A no-grad
  //    forward builds no backward graph but produces bitwise-identical
  //    values, so this is the shape of an inference deployment.
  model.Freeze();
  ag::NoGradScope no_grad;
  data::IrregularSeries test = MakeWave(+1.0, 999);
  ag::Var logits = model.ClassifyLogits(test);
  std::printf("\ntest logits: %s  (true label %lld)\n",
              logits.value().ToString().c_str(),
              static_cast<long long>(test.label));

  // 5. The DHS is continuous: query the model between and beyond
  //    observations.
  std::vector<Scalar> queries = {test.times[3] + 0.1,           // between obs
                                 test.times.back() + 1.0};      // beyond
  auto preds = model.PredictAt(test, queries);
  for (std::size_t i = 0; i < queries.size(); ++i)
    std::printf("prediction at t=%.2f: %.4f\n", queries[i],
                preds[i].value().item());

  std::printf("\ndone.\n");
  return 0;
}
