// Inspect the differentiable hidden state machinery directly: build latent
// codes, invert the attention with each p_t strategy, and compare sparsity —
// a hands-on tour of the paper's Sec. III-C and Fig. 3.
//
//   ./examples/attention_inspection

#include <cstdio>

#include "sparsity/hoyer.h"
#include "sparsity/pt_solver.h"
#include "tensor/random.h"

using namespace diffode;

int main() {
  std::printf("Attention inversion walkthrough\n");
  std::printf("===============================\n\n");

  // Latent codes Z for n = 12 observations in a d = 4 space.
  Rng rng(7);
  const Index n = 12, d = 4;
  Tensor z = rng.NormalTensor(Shape{n, d});
  sparsity::AttentionInverse inv = sparsity::AttentionInverse::Build(z);

  // A DHS produced by genuine softmax attention from a random query.
  Tensor q = rng.NormalTensor(Shape{1, d});
  Tensor logits = q.MatMul(z.Transposed()) * (1.0 / std::sqrt(Scalar(d)));
  const Scalar m = logits.Max();
  Tensor p_true = logits.Map([m](Scalar x) { return std::exp(x - m); });
  p_true *= 1.0 / p_true.Sum();
  Tensor s = p_true.MatMul(z);
  std::printf("true attention p (Hoyer %.3f):\n  %s\n\n",
              sparsity::HoyerAbs(p_true), p_true.ToString().c_str());

  // Recover p from S with each strategy (Eq. 13 / Eq. 32).
  Tensor h_ada = rng.NormalTensor(Shape{1, n});
  struct Row {
    const char* name;
    sparsity::PtStrategy strategy;
  };
  const Row rows[] = {
      {"minNorm", sparsity::PtStrategy::kMinNorm},
      {"maxHoyer", sparsity::PtStrategy::kMaxHoyer},
      {"adaH", sparsity::PtStrategy::kAdaH},
      {"exactKKT", sparsity::PtStrategy::kExactKkt},
  };
  for (const Row& row : rows) {
    Tensor p = sparsity::RecoverP(inv, s, row.strategy, &h_ada);
    Tensor s_rec = p.MatMul(z);
    std::printf("%-9s Hoyer %.3f  sum %.4f  ||pZ - S|| %.2e\n", row.name,
                sparsity::HoyerAbs(p), p.Sum(), (s_rec - s).MaxAbs());
  }

  // Recover the latent code z_t from p (Eq. 34).
  Tensor h2 = rng.NormalTensor(Shape{1, n});
  Tensor z_rec = sparsity::RecoverZ(inv, p_true, h2);
  std::printf("\nrecovered z_t (1 x %lld): %s\n", static_cast<long long>(d),
              z_rec.ToString().c_str());
  std::printf("\nevery strategy reconstructs S exactly; they differ in how "
              "the extra\ndegrees of freedom (n - d = %lld) are spent.\n",
              static_cast<long long>(n - d));
  return 0;
}
